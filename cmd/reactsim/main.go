// Command reactsim runs simulation cells: a power trace driving an energy
// buffer powering a benchmark workload, and reports the outcome.
//
// Usage:
//
//	reactsim [-trace name|-tracefile f.csv] [-buffer name] [-bench name]
//	         [-seed n] [-seeds n] [-dt s] [-record file.csv] [-timeline f.json] [-v]
//	reactsim -list
//	reactsim -scenario name [-seed n] [-workers n] [-json] [-timeline f.json]
//	reactsim -scenario-file spec.json [-seed n] [-workers n] [-json] [-timeline f.json]
//	reactsim -explore space.json [-target metric<=value] [-workers n] [-json]
//	reactsim -remote http://host:port -scenario name [-seed n|-seeds n] [-dt s] [-json]
//	reactsim -remote http://host:port -explore space.json [-target ...] [-json]
//
// With -seeds n (n > 1) it runs a multi-seed sweep through the shared
// experiment engine — n independent instances of the scenario on seeds
// 1..n — and reports each metric's across-seed mean and standard
// deviation instead of a single run's values.
//
// -list prints the scenario registry (the extended stress catalogue plus
// the paper's evaluation grid); -scenario runs one registered scenario
// over its whole buffer set, and -scenario-file runs a JSON scenario spec,
// so new workloads are runnable without recompiling. -json emits the
// scenario results as machine-readable JSON.
//
// -explore runs a design-space exploration from a JSON space file: a base
// scenario crossed with a capacitance lattice, preset buffers, timestep
// values, seed ranges, and JSON-patchable spec knobs, evaluated by an
// exhaustive grid or by bisection toward a metric target (-target
// "latency<=0.5" or "blocks>=100" sets or overrides the goal and, when
// the space names no strategy, selects bisection). The report lists every
// evaluated point, the Pareto frontiers the space asked for, and the
// minimal design meeting the target; -json emits the full result.
//
// The mode flags -list, -scenario, -scenario-file and -explore are
// mutually exclusive: naming two modes is an error, not a silent
// precedence.
//
// -remote targets a reactd daemon instead of simulating locally: a
// scenario run becomes POST /runs, -seeds n becomes POST /sweeps over
// seeds 1..n, and -explore becomes POST /explorations, all served from the
// daemon's content-addressed cell cache — repeated and overlapping
// submissions reuse already-simulated cells. Remote reports are
// bit-identical to their local equivalents for the same inputs (the
// daemon aggregates and explores with the same code).
//
// -timeline records the run as a Chrome trace-event JSON timeline —
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing — showing
// each cell's device-state spans (booting/on/backing/restoring, off as
// gaps), checkpoint backup/restore instants, buffer-capacitance counter
// samples, and the engine's dead-time fast-forward parks. It applies to
// local single-cell and scenario runs; remote runs, explorations and
// multi-seed sweeps reject it (their cells overlap one timeline).
//
// -cpuprofile and -memprofile write pprof profiles (any mode): the CPU
// profile covers the whole run, and the heap profile is captured on exit
// after a final GC. Inspect with `go tool pprof`.
//
// Buffers: "770 µF", "10 mF", "17 mF", "Morphy", "REACT", plus the
// related-work extensions "Capybara" and "Dewdrop".
// Benchmarks: DE, SC, RT, PF (plus ML and MIX in scenario specs).
// Traces: any registered generator (rf-cart, energy-attack, solar-72h,
// ...) or the short aliases cart, obstructed, mobile, campus, commute.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"react/internal/ckpt"
	"react/internal/experiments"
	"react/internal/explore"
	"react/internal/mcu"
	"react/internal/obs"
	"react/internal/runner"
	"react/internal/scenario"
	"react/internal/service"
	"react/internal/sim"
	"react/internal/trace"
)

// traceAliases maps the CLI's historical short trace names onto the
// canonical generator registry, which -trace also accepts directly — one
// registry serves the CLI, the scenario specs, and the library.
var traceAliases = map[string]string{
	"cart":       "rf-cart",
	"obstructed": "rf-obstructed",
	"mobile":     "rf-mobile",
	"campus":     "solar-campus",
	"commute":    "solar-commute",
}

func namedTrace(name string, seed uint64) (*trace.Trace, error) {
	if canon, ok := traceAliases[name]; ok {
		name = canon
	}
	tr, err := trace.ByName(name, seed)
	if err != nil {
		return nil, fmt.Errorf("unknown trace %q (want a short name — cart, obstructed, mobile, campus, commute — or a generator: %v)",
			name, trace.GeneratorNames())
	}
	return tr, nil
}

func main() { os.Exit(run()) }

// run is main's body with an exit code instead of os.Exit calls, so the
// deferred profile writers actually run — os.Exit would skip them and
// truncate -cpuprofile output to a useless header.
func run() int {
	var (
		traceName = flag.String("trace", "cart", "built-in trace name")
		traceFile = flag.String("tracefile", "", "CSV trace file (overrides -trace)")
		bufName   = flag.String("buffer", "REACT", `buffer design ("770 µF", "10 mF", "17 mF", "Morphy", "REACT", "Capybara", "Dewdrop")`)
		bench     = flag.String("bench", "DE", "benchmark (DE, SC, RT, PF)")
		seed      = flag.Uint64("seed", 1, "trace/event seed")
		seeds     = flag.Int("seeds", 1, "run a multi-seed sweep over seeds 1..n and report mean ± std")
		dt        = flag.Float64("dt", 1e-3, "integration timestep (s)")
		record    = flag.String("record", "", "write a voltage/state CSV recording to this file")
		verbose   = flag.Bool("v", false, "print the full energy ledger")
		list      = flag.Bool("list", false, "list the registered scenarios and exit")
		scenName  = flag.String("scenario", "", "run a registered scenario over its whole buffer set")
		scenFile  = flag.String("scenario-file", "", "run a JSON scenario spec (overrides -scenario)")
		workers   = flag.Int("workers", 0, "bound the scenario worker pool (0 = GOMAXPROCS)")
		jsonOut   = flag.Bool("json", false, "emit scenario results as JSON (with -scenario/-scenario-file/-explore)")
		remote    = flag.String("remote", "", "target a reactd daemon (http://host:port) instead of simulating locally")
		explFile  = flag.String("explore", "", "run a design-space exploration from a JSON space file")
		targetStr = flag.String("target", "", `exploration metric goal ("latency<=0.5", "blocks>=100"); needs -explore`)
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit (go tool pprof)")
		timeline  = flag.String("timeline", "", "record a Chrome trace-event timeline (Perfetto / chrome://tracing) to this JSON file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reactsim:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "reactsim:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "reactsim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "reactsim:", err)
			}
		}()
	}

	// Which flags did the user set explicitly? Scenario specs carry their
	// own seed and timestep, so only explicit -seed/-dt override them, and
	// single-cell-only flags must not be silently ignored in scenario mode.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	// Conflicting mode selections are an error, never a silent precedence.
	if err := checkModeConflicts(explicit); err != nil {
		fmt.Fprintln(os.Stderr, "reactsim:", err)
		return 2
	}

	if *list {
		listScenarios()
		return 0
	}

	if *explFile != "" {
		for _, bad := range []string{"trace", "tracefile", "buffer", "bench", "record", "v", "seed", "seeds", "dt", "timeline"} {
			if explicit[bad] {
				fmt.Fprintf(os.Stderr, "reactsim: -%s does not apply to explorations (the space file defines the axes)\n", bad)
				return 2
			}
		}
		if *remote != "" && explicit["workers"] {
			fmt.Fprintln(os.Stderr, "reactsim: -workers does not apply to remote explorations (the daemon owns the pool)")
			return 2
		}
		if err := runExplore(*explFile, *targetStr, *remote, *workers, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "reactsim:", err)
			return 1
		}
		return 0
	}

	if *remote != "" {
		if *scenName == "" && *scenFile == "" {
			fmt.Fprintln(os.Stderr, "reactsim: -remote needs -scenario or -scenario-file (the daemon serves scenario specs)")
			return 2
		}
		for _, bad := range []string{"trace", "tracefile", "buffer", "bench", "record", "v", "workers", "timeline"} {
			if explicit[bad] {
				fmt.Fprintf(os.Stderr, "reactsim: -%s does not apply to remote runs (the daemon owns the simulation)\n", bad)
				return 2
			}
		}
		if explicit["seed"] && *seeds > 1 {
			fmt.Fprintln(os.Stderr, "reactsim: set -seed or -seeds, not both")
			return 2
		}
		seedOverride, dtOverride := uint64(0), 0.0
		if explicit["seed"] {
			seedOverride = *seed
		}
		if explicit["dt"] {
			dtOverride = *dt
		}
		if err := runRemote(*remote, *scenName, *scenFile, seedOverride, dtOverride, *seeds, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "reactsim:", err)
			return 1
		}
		return 0
	}

	if *scenName != "" || *scenFile != "" {
		for _, bad := range []string{"trace", "tracefile", "buffer", "bench", "seeds", "record", "v"} {
			if explicit[bad] {
				fmt.Fprintf(os.Stderr, "reactsim: -%s does not apply to scenario runs (scenarios define their own trace, workload and buffer set)\n", bad)
				return 2
			}
		}
		seedOverride, dtOverride := uint64(0), 0.0
		if explicit["seed"] {
			seedOverride = *seed
		}
		if explicit["dt"] {
			dtOverride = *dt
		}
		if err := runScenario(*scenName, *scenFile, seedOverride, *workers, dtOverride, *jsonOut, *timeline); err != nil {
			fmt.Fprintln(os.Stderr, "reactsim:", err)
			return 1
		}
		return 0
	}
	if *jsonOut {
		fmt.Fprintln(os.Stderr, "reactsim: -json requires -scenario or -scenario-file")
		return 2
	}

	// The experiment factories panic on unknown names (a fixed set); turn
	// bad CLI input into a friendly error instead of a stack trace.
	if err := validateNames(*bufName, *bench); err != nil {
		fmt.Fprintln(os.Stderr, "reactsim:", err)
		return 2
	}

	if *seeds > 1 {
		if explicit["timeline"] {
			fmt.Fprintln(os.Stderr, "reactsim: -timeline does not apply to multi-seed sweeps (every seed is the same cell; record one seed at a time)")
			return 2
		}
		if err := sweepSeeds(*traceName, *traceFile, *bufName, *bench, *seeds, *dt); err != nil {
			fmt.Fprintln(os.Stderr, "reactsim:", err)
			return 1
		}
		return 0
	}

	tr, err := loadTrace(*traceName, *traceFile, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reactsim:", err)
		return 1
	}

	opt := experiments.Options{Seed: *seed, DT: *dt}
	if *record != "" {
		opt.RecordDT = 0.5
	}
	var tl *obs.SimTimeline
	if *timeline != "" {
		tl = obs.NewSimTimeline(0)
		tl.Label(0, *bufName+" / "+*bench)
		opt.Probe = tl
	}
	res, err := experiments.RunCell(tr, *bufName, *bench, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reactsim:", err)
		return 1
	}
	if tl != nil {
		if err := writeTimeline(tl, *timeline); err != nil {
			fmt.Fprintln(os.Stderr, "reactsim:", err)
			return 1
		}
	}

	s := tr.Stats()
	fmt.Printf("trace    %s (%.0f s, %.3g mW mean, CV %.0f%%)\n", tr.Name, s.Duration, s.Mean*1e3, s.CV*100)
	fmt.Printf("buffer   %s\n", res.Buffer)
	fmt.Printf("bench    %s\n", res.Workload)
	if res.Latency < 0 {
		fmt.Printf("latency  never started\n")
	} else {
		fmt.Printf("latency  %.2f s\n", res.Latency)
	}
	fmt.Printf("on-time  %.1f s of %.1f s (%.1f%% duty)\n", res.OnTime, res.Duration, res.OnFraction()*100)
	fmt.Printf("cycles   %d (mean %.1f s)\n", res.Cycles, res.MeanCycle)
	keys := make([]string, 0, len(res.Metrics))
	for k := range res.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("metric   %-10s %.0f\n", k, res.Metrics[k])
	}
	if *verbose {
		l := res.Ledger
		fmt.Printf("ledger   harvested %.4f J\n", l.Harvested)
		fmt.Printf("ledger   consumed  %.4f J\n", l.Consumed)
		fmt.Printf("ledger   clipped   %.4f J\n", l.Clipped)
		fmt.Printf("ledger   leaked    %.4f J\n", l.Leaked)
		fmt.Printf("ledger   switching %.4f J\n", l.SwitchLoss)
		fmt.Printf("ledger   overhead  %.4f J\n", l.Overhead)
		fmt.Printf("ledger   residual  %.4f J\n", res.Stored)
		fmt.Printf("ledger   balance error %.2e\n", res.EnergyBalanceError())
	}
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reactsim:", err)
			return 1
		}
		defer f.Close()
		if err := experiments.WriteSeriesCSV(f, res.Buffer, res.Samples); err != nil {
			fmt.Fprintln(os.Stderr, "reactsim:", err)
			return 1
		}
		fmt.Printf("recorded %d samples to %s\n", len(res.Samples), *record)
	}
	return 0
}

// listScenarios prints the registry: the extended catalogue first, then
// the paper grid.
func listScenarios() {
	specs := scenario.All()
	fmt.Println("Extended scenarios:")
	for _, s := range specs {
		if !s.Paper {
			fmt.Printf("  %-20s %s\n", s.Name, s.Title)
		}
	}
	fmt.Println("\nPaper evaluation grid:")
	for _, s := range specs {
		if s.Paper {
			fmt.Printf("  %-28s %s\n", s.Name, s.Title)
		}
	}
	fmt.Printf("\nDevice profiles:    %s\n", strings.Join(mcu.ProfileNames(), ", "))
	fmt.Printf("Checkpoint schemes: %s\n", strings.Join(ckpt.Names(), ", "))
	fmt.Println("\nRun one with: reactsim -scenario <name> [-seed n] [-workers n] [-json]")
}

// scenarioJSON is the machine-readable scenario report.
type scenarioJSON struct {
	Scenario string           `json:"scenario"`
	Title    string           `json:"title,omitempty"`
	Seed     uint64           `json:"seed"`
	Trace    string           `json:"trace"`
	Results  []scenarioResult `json:"results"`
}

type scenarioResult struct {
	Buffer       string             `json:"buffer"`
	Latency      float64            `json:"latency_s"`
	OnTime       float64            `json:"on_time_s"`
	Duration     float64            `json:"duration_s"`
	Duty         float64            `json:"duty"`
	Cycles       int                `json:"cycles"`
	MeanCycle    float64            `json:"mean_cycle_s"`
	Metrics      map[string]float64 `json:"metrics"`
	BalanceError float64            `json:"energy_balance_error"`
}

// writeTimeline flushes a recorded timeline to path and reports the event
// drop count, if any, so a truncated recording is never mistaken for a
// complete one.
func writeTimeline(tl *obs.SimTimeline, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tl.Flush(f); err != nil {
		return err
	}
	if d := tl.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "reactsim: timeline buffer full, %d events dropped (coarsen -dt or shorten the trace)\n", d)
	}
	fmt.Fprintf(os.Stderr, "reactsim: timeline written to %s (load in ui.perfetto.dev)\n", path)
	return nil
}

// runScenario resolves a scenario (registry name or JSON file), runs every
// buffer in its set over the engine's pool, and reports per-buffer
// results.
func runScenario(name, file string, seed uint64, workers int, dt float64, jsonOut bool, timeline string) error {
	var (
		spec *scenario.Spec
		err  error
	)
	if file != "" {
		data, rerr := os.ReadFile(file)
		if rerr != nil {
			return rerr
		}
		if spec, err = scenario.ParseSpec(data); err != nil {
			return err
		}
	} else {
		var ok bool
		if spec, ok = scenario.Lookup(name); !ok {
			return fmt.Errorf("unknown scenario %q (see reactsim -list)", name)
		}
	}

	opt := scenario.RunOptions{Seed: seed, Workers: workers, DT: dt}
	var tl *obs.SimTimeline
	if timeline != "" {
		tl = obs.NewSimTimeline(0)
		for i, b := range spec.Buffers {
			tl.Label(i, b.DisplayName())
		}
		opt.Probe = tl
	}
	run, err := spec.Run(context.Background(), nil, opt)
	if err != nil {
		return err
	}
	if tl != nil {
		if werr := writeTimeline(tl, timeline); werr != nil {
			return werr
		}
	}
	tr, err := spec.Trace.Build(run.Seed)
	if err != nil {
		return err
	}

	if jsonOut {
		out := scenarioJSON{Scenario: spec.Name, Title: spec.Title, Seed: run.Seed, Trace: tr.Name}
		for i, res := range run.Results {
			out.Results = append(out.Results, scenarioResult{
				Buffer:       spec.Buffers[i].DisplayName(),
				Latency:      res.Latency,
				OnTime:       res.OnTime,
				Duration:     res.Duration,
				Duty:         res.OnFraction(),
				Cycles:       res.Cycles,
				MeanCycle:    res.MeanCycle,
				Metrics:      res.Metrics,
				BalanceError: res.EnergyBalanceError(),
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	s := tr.Stats()
	fmt.Printf("scenario %s — %s\n", spec.Name, spec.Title)
	fmt.Printf("trace    %s (%.0f s, %.3g mW mean, CV %.0f%%)\n", tr.Name, s.Duration, s.Mean*1e3, s.CV*100)
	fmt.Printf("seed     %d\n\n", run.Seed)

	// One row per buffer; columns are the shared stats plus the union of
	// workload metrics.
	keySet := map[string]bool{}
	for _, res := range run.Results {
		for k := range res.Metrics {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("%-14s %9s %7s %7s", "buffer", "latency", "duty%", "cycles")
	for _, k := range keys {
		fmt.Printf(" %10s", k)
	}
	fmt.Println()
	for i, res := range run.Results {
		lat := "-"
		if res.Latency >= 0 {
			lat = fmt.Sprintf("%.2f", res.Latency)
		}
		fmt.Printf("%-14s %9s %7.1f %7d", spec.Buffers[i].DisplayName(), lat, res.OnFraction()*100, res.Cycles)
		for _, k := range keys {
			fmt.Printf(" %10.0f", res.Metrics[k])
		}
		fmt.Println()
	}
	return nil
}

func validateNames(buf, bench string) error {
	ok := false
	for _, b := range experiments.ExtendedBufferNames {
		if b == buf {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("unknown buffer %q (want %v)", buf, experiments.ExtendedBufferNames)
	}
	for _, b := range experiments.BenchmarkNames {
		if b == bench {
			return nil
		}
	}
	return fmt.Errorf("unknown benchmark %q (want %v)", bench, experiments.BenchmarkNames)
}

// sweepSeeds runs the scenario once per seed in 1..n over the experiment
// engine's worker pool and prints each metric's mean ± standard deviation,
// plus latency and duty-cycle aggregates.
func sweepSeeds(traceName, traceFile, bufName, bench string, n int, dt float64) error {
	label := traceName
	var fileTrace *trace.Trace
	if traceFile != "" {
		// A file trace does not vary with the seed (only the workload's
		// event schedule does); load it once, not once per worker.
		tr, err := loadTrace(traceName, traceFile, 1)
		if err != nil {
			return err
		}
		fileTrace = tr
		label = traceFile
	}
	results, err := runner.Sweep(context.Background(), nil, runner.Seeds(n),
		func(_ context.Context, seed uint64) (sim.Result, error) {
			tr := fileTrace
			if tr == nil {
				var err error
				if tr, err = namedTrace(traceName, seed); err != nil {
					return sim.Result{}, err
				}
			}
			return experiments.RunCell(tr, bufName, bench, experiments.Options{Seed: seed, DT: dt})
		})
	if err != nil {
		return err
	}

	fmt.Printf("sweep    %s / %s / %s over %d seeds\n", label, bufName, bench, n)
	printSeedSummary(scenario.AggregateSeeds(results))
	return nil
}

// printSeedSummary reports one cell's across-seed statistics — the shared
// scenario.AggregateSeeds shape, which remote sweeps also report, so local
// and remote sweep output agree to the last digit.
func printSeedSummary(agg scenario.SeedSummary) {
	// Latency statistics cover only the runs that started: -1 is the
	// "never reached the enable voltage" sentinel, not a time.
	if agg.Started == 0 {
		fmt.Printf("latency  never started (0/%d seeds)\n", agg.Seeds)
	} else {
		fmt.Printf("latency  %.2f ± %.2f s (started %d/%d seeds)\n", agg.Latency.Mean, agg.Latency.Std, agg.Started, agg.Seeds)
	}
	fmt.Printf("duty     %.1f ± %.1f %%\n", agg.Duty.Mean*100, agg.Duty.Std*100)
	keys := make([]string, 0, len(agg.Metrics))
	for k := range agg.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("metric   %-10s %.1f ± %.1f\n", k, agg.Metrics[k].Mean, agg.Metrics[k].Std)
	}
}

// runRemote targets a reactd daemon: a scenario run becomes POST /runs and
// -seeds n becomes POST /sweeps over seeds 1..n.
func runRemote(addr, name, file string, seed uint64, dt float64, seeds int, jsonOut bool) error {
	var inline json.RawMessage
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		// Validate locally for a friendly error before shipping the bytes.
		if _, err := scenario.ParseSpec(data); err != nil {
			return err
		}
		inline = data
		name = ""
	}
	ctx := context.Background()
	client, err := service.DialContext(ctx, addr)
	if err != nil {
		return err
	}

	if seeds > 1 {
		return runRemoteSweep(ctx, client, name, inline, dt, seeds, jsonOut)
	}

	st, err := client.Run(ctx, service.RunRequest{Scenario: name, Spec: inline, Seed: seed, DT: dt})
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	disposition := "simulated"
	if st.Cached {
		disposition = "served from cache"
	} else if st.Coalesced {
		disposition = "coalesced with in-flight work"
	}
	fmt.Printf("scenario %s (remote %s, %s)\n", st.Scenario, st.ID, disposition)
	fmt.Printf("seed     %d\n\n", st.Seed)

	keySet := map[string]bool{}
	for _, cell := range st.Cells {
		if cell.Result != nil {
			for k := range cell.Result.Metrics {
				keySet[k] = true
			}
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("%-14s %9s %7s %7s", "buffer", "latency", "duty%", "cycles")
	for _, k := range keys {
		fmt.Printf(" %10s", k)
	}
	fmt.Println()
	for _, cell := range st.Cells {
		if cell.Result == nil {
			fmt.Printf("%-14s %9s\n", cell.Buffer, "-")
			continue
		}
		r := cell.Result
		lat := "-"
		if r.Latency >= 0 {
			lat = fmt.Sprintf("%.2f", r.Latency)
		}
		fmt.Printf("%-14s %9s %7.1f %7d", cell.Buffer, lat, r.Duty*100, r.Cycles)
		for _, k := range keys {
			fmt.Printf(" %10.0f", r.Metrics[k])
		}
		fmt.Println()
	}
	return nil
}

// runRemoteSweep submits a daemon-side seed sweep and prints the
// per-buffer seed summaries.
func runRemoteSweep(ctx context.Context, client *service.Client, name string, inline json.RawMessage, dt float64, seeds int, jsonOut bool) error {
	req := service.SweepRequest{Scenario: name, Spec: inline, SeedFrom: 1, SeedTo: uint64(seeds)}
	if dt > 0 {
		req.DTs = []float64{dt}
	}
	st, err := client.Sweep(ctx, req)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	fmt.Printf("sweep    %s over seeds 1..%d (remote %s: %d cached, %d coalesced, %d simulated)\n",
		st.Scenario, seeds, st.ID, st.CachedCells, st.CoalescedCells, st.NewCells)
	for _, row := range st.Summary {
		fmt.Printf("\nbuffer   %s (dt %g s)\n", row.Buffer, row.DT)
		printSeedSummary(row.SeedSummary)
	}
	return nil
}

// checkModeConflicts rejects flag combinations that would otherwise
// resolve by silent precedence: two run modes at once, a goal without an
// exploration, or both seed forms.
func checkModeConflicts(explicit map[string]bool) error {
	var set []string
	for _, f := range []string{"list", "scenario", "scenario-file", "explore"} {
		if explicit[f] {
			set = append(set, "-"+f)
		}
	}
	if len(set) > 1 {
		return fmt.Errorf("%s are mutually exclusive: pick one mode", strings.Join(set, " and "))
	}
	if explicit["target"] && !explicit["explore"] {
		return fmt.Errorf("-target needs -explore (it sets the exploration's metric goal)")
	}
	if explicit["seed"] && explicit["seeds"] {
		return fmt.Errorf("set -seed or -seeds, not both")
	}
	if explicit["seeds"] && (explicit["scenario"] || explicit["scenario-file"]) && !explicit["remote"] {
		return fmt.Errorf("-seeds does not apply to local scenario runs (scenarios define their own seed; use -remote for a daemon-side seed sweep)")
	}
	if explicit["seeds"] && explicit["explore"] {
		return fmt.Errorf("-seeds does not apply to explorations (the space file's seeds/seed_from/seed_to define the axis)")
	}
	if explicit["remote"] && explicit["list"] {
		return fmt.Errorf("-list prints the local registry; list a daemon's with GET /scenarios (curl <addr>/scenarios)")
	}
	return nil
}

// parseTarget parses a -target goal: "metric<=value", "metric>=value", or
// "metric=value" (shorthand for a ceiling).
func parseTarget(s string) (*explore.Target, error) {
	for _, op := range []string{"<=", ">=", "="} {
		i := strings.Index(s, op)
		if i < 0 {
			continue
		}
		if i == 0 {
			break // no metric name before the comparison
		}
		v, err := strconv.ParseFloat(s[i+len(op):], 64)
		if err != nil {
			return nil, fmt.Errorf("bad -target value in %q: %w", s, err)
		}
		t := &explore.Target{Metric: s[:i]}
		if op == ">=" {
			t.Min = &v
		} else {
			t.Max = &v
		}
		return t, nil
	}
	return nil, fmt.Errorf(`bad -target %q (want "metric<=value" or "metric>=value")`, s)
}

// runExplore loads a space file, applies the -target override, and runs
// the exploration locally (over the experiment engine) or against a
// reactd daemon. The remote result is bit-identical to the local one for
// the same space — both paths print through printExploreResult.
func runExplore(path, targetStr, remote string, workers int, jsonOut bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sp, err := explore.ParseSpace(data)
	if err != nil {
		return err
	}
	if targetStr != "" {
		var tgt *explore.Target
		if tgt, err = parseTarget(targetStr); err != nil {
			return err
		}
		sp.Target = tgt
		if sp.Strategy == "" {
			sp.Strategy = explore.StrategyBisect
		}
		// Revalidate with the new goal and strategy in place.
		if _, err = sp.Resolve(); err != nil {
			return err
		}
	}
	ctx := context.Background()

	var res *explore.Result
	if remote != "" {
		res, err = exploreRemote(ctx, remote, sp, jsonOut)
	} else {
		res, err = explore.Run(ctx, sp, explore.Local(workers))
	}
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	printExploreResult(res)
	return nil
}

// exploreRemote ships the space to a reactd daemon and returns its
// result (bit-identical to the local path for the same space).
func exploreRemote(ctx context.Context, remote string, sp *explore.Space, jsonOut bool) (*explore.Result, error) {
	client, err := service.DialContext(ctx, remote)
	if err != nil {
		return nil, err
	}
	st, err := client.Explore(ctx, sp)
	if err != nil {
		return nil, err
	}
	if !jsonOut {
		fmt.Printf("remote   %s: %d cached, %d coalesced, %d simulated cells\n",
			st.ID, st.CachedCells, st.CoalescedCells, st.NewCells)
	}
	return st.Result, nil
}

// printExploreResult renders the shared human-readable exploration report:
// one row per evaluated point, then the bisection/scan outcomes and the
// Pareto frontiers (frontier membership is starred in the table).
func printExploreResult(res *explore.Result) {
	fmt.Printf("explore  %s — %s over %d points × %d seed(s), %d evaluated\n",
		res.Scenario, res.Strategy, len(res.Points), len(res.Seeds), res.Evaluated)

	// Columns: the shared objectives plus the union of workload metrics.
	builtin := map[string]bool{
		explore.MetricLatency: true, explore.MetricDuty: true,
		explore.MetricDead: true, explore.MetricEfficiency: true,
	}
	keySet := map[string]bool{}
	params := map[string]bool{}
	for _, pr := range res.Points {
		for k := range pr.Metrics {
			if !builtin[k] {
				keySet[k] = true
			}
		}
		for p := range pr.Params {
			params[p] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	paths := make([]string, 0, len(params))
	for p := range params {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	onFrontier := map[int]bool{}
	for _, f := range res.Frontiers {
		for _, pi := range f.Points {
			onFrontier[pi] = true
		}
	}

	fmt.Printf("\n%5s %-12s %8s", "point", "buffer", "dt")
	for _, p := range paths {
		fmt.Printf(" %12s", p[strings.LastIndex(p, "/")+1:])
	}
	fmt.Printf(" %9s %6s %6s %5s", "latency", "duty%", "dead%", "eff%")
	for _, k := range keys {
		fmt.Printf(" %10s", k)
	}
	fmt.Println()
	for i, pr := range res.Points {
		if !pr.Evaluated {
			continue
		}
		mark := " "
		if onFrontier[i] {
			mark = "*"
		}
		fmt.Printf("%4d%s %-12s %8g", i, mark, pr.Buffer, pr.DT)
		for _, p := range paths {
			fmt.Printf(" %12g", pr.Params[p])
		}
		lat := "-"
		if v, ok := pr.Metrics[explore.MetricLatency]; ok {
			lat = fmt.Sprintf("%.2f", v)
		}
		fmt.Printf(" %9s %6.1f %6.1f %5.1f", lat,
			pr.Metrics[explore.MetricDuty]*100, pr.Metrics[explore.MetricDead]*100,
			pr.Metrics[explore.MetricEfficiency]*100)
		for _, k := range keys {
			fmt.Printf(" %10.1f", pr.Metrics[k])
		}
		fmt.Println()
	}

	if res.Target != nil {
		for _, b := range res.Best {
			group := ""
			if len(res.Best) > 1 {
				group = fmt.Sprintf(" [dt %g", b.DT)
				for _, p := range paths {
					group += fmt.Sprintf(" %s=%g", p[strings.LastIndex(p, "/")+1:], b.Params[p])
				}
				group += "]"
			}
			if b.Satisfied {
				pt := res.Points[b.Point]
				size := pt.Buffer
				if pt.C > 0 {
					size = fmt.Sprintf("%s (%.4g F)", pt.Buffer, pt.C)
				}
				fmt.Printf("\ntarget   %s%s: minimal design %s at point %d (%d point(s) probed)\n",
					res.Target, group, size, b.Point, b.Evaluations)
			} else {
				fmt.Printf("\ntarget   %s%s: not satisfiable on the axis (%d point(s) probed)\n",
					res.Target, group, b.Evaluations)
			}
		}
	}
	for _, f := range res.Frontiers {
		fmt.Printf("\nfrontier %s vs %s (%d of %d evaluated points):",
			f.X, f.Y, len(f.Points), res.Evaluated)
		for _, pi := range f.Points {
			fmt.Printf(" %d", pi)
		}
		fmt.Println()
	}
}

func loadTrace(name, file string, seed uint64) (*trace.Trace, error) {
	if file == "" {
		return namedTrace(name, seed)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadCSV(file, f)
}
