// Command reactd serves simulations over HTTP: the scenario registry and
// inline JSON specs, executed asynchronously over the experiment engine
// with a content-addressed, single-flight result cache.
//
// Usage:
//
//	reactd [-addr :8080] [-workers n] [-cache n]
//
// Endpoints:
//
//	GET    /scenarios  list the registry (names, buffers, fingerprints)
//	POST   /runs       submit: {"scenario":"energy-attack"} or {"spec":{...}}
//	GET    /runs/{id}  poll status and (partial) per-buffer results
//	DELETE /runs/{id}  cancel an in-flight run / forget a finished one
//	GET    /metrics    cache hit rate, queue depth, sims/sec
//
// A submission returns a run id immediately (HTTP 202), or the cached
// result (HTTP 200) when an identical run — same scenario physics, seed
// and timestep — already completed. Concurrent identical submissions
// coalesce into a single simulation. SIGINT/SIGTERM drain in-flight work
// before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"react/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "concurrent simulation cells (0 = GOMAXPROCS)")
		cache   = flag.Int("cache", service.DefaultCacheRuns, "completed runs kept in the result cache")
	)
	flag.Parse()

	srv := service.New(service.Config{Workers: *workers, CacheRuns: *cache})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "reactd: serving on %s (workers %d, cache %d runs)\n", *addr, *workers, *cache)

	select {
	case err := <-errCh:
		// The listener failed outright (bad address, port in use).
		fmt.Fprintln(os.Stderr, "reactd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "reactd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "reactd: shutdown:", err)
	}
	srv.Close()
}
