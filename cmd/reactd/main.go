// Command reactd serves simulations over HTTP: the scenario registry and
// inline JSON specs, executed asynchronously over the experiment engine
// with a content-addressed, single-flight result cache.
//
// Usage:
//
//	reactd [-addr :8080] [-workers n] [-cache n] [-cache-cells n]
//	       [-data-dir dir] [-self url -peers url,url,...]
//	       [-log] [-pprof]
//
// -log emits structured request logs (one JSON line per HTTP request, with
// a server-scoped request id) to stderr. -pprof mounts the net/http/pprof
// profiling handlers under /debug/pprof/ on the same listener — off by
// default, since profiling endpoints on a shared port are an operational
// decision, not a free extra.
//
// -data-dir backs the cell cache with a persistent content-addressed disk
// store: completed cells write through, LRU eviction demotes to disk, and
// a restarted daemon serves previously computed grids without
// resimulating. -peers (with -self, this node's own advertised URL) turns
// on cluster mode: cell ownership is consistent-hashed over the ring, and
// non-owned cells are fetched from their owners, degrading to local
// simulation when a peer is down.
//
// Endpoints:
//
//	GET    /scenarios    list the registry (names, buffers, fingerprints)
//	POST   /runs         submit: {"scenario":"energy-attack"} or {"spec":{...}}
//	GET    /runs/{id}    poll status and (partial) per-buffer results
//	DELETE /runs/{id}    cancel an in-flight run / forget a finished one
//	POST   /sweeps       submit: {"scenario":"...","seed_from":1,"seed_to":50,
//	                     "dts":[...],"buffers":[...]} (or an inline "spec")
//	GET    /sweeps/{id}  poll per-cell results and the per-axis summary
//	DELETE /sweeps/{id}  cancel an in-flight sweep / forget a finished one
//	POST   /explorations submit a design-space exploration: a base scenario
//	                     crossed with a capacitance lattice, presets, dts,
//	                     seeds and spec patches, explored by grid or by
//	                     bisection toward a metric target
//	GET    /explorations/{id}  poll probed cells and the assembled result
//	                     (points, bisection bests, Pareto frontiers)
//	DELETE /explorations/{id}  cancel / forget an exploration
//	GET    /metrics      Prometheus text exposition of every counter, gauge
//	                     and latency histogram (JSON with Accept: application/json)
//	GET    /metrics.json the JSON metrics report: cache hit rates,
//	                     explore_* counters, queue depth, sims/sec (lifetime
//	                     and trailing-minute), build info, start time
//	GET    /runs/{id}/trace          the run's span tree (also /sweeps/
//	                     {id}/trace and /explorations/{id}/trace), merged
//	                     across cluster peers into one tree
//	GET    /traces/{id}  this node's raw spans for a trace id
//
// The cache is cell-granular: the unit of cached work is one buffer of one
// spec under a resolved seed and timestep (its content address). A run or
// sweep is assembled from shared cells, so a submission that overlaps
// anything already simulated — or simulating — reuses those cells and
// pays only for the genuinely new ones: a 50-seed sweep after a 10-seed
// sweep simulates 40 seeds, and a plain run whose cells a sweep already
// covered performs no work at all. A submission returns its id immediately
// (HTTP 202), or the completed view (HTTP 200) when every cell was served
// from the cache. Sweeps report per-cell metrics plus across-seed
// mean ± std summary rows per (buffer, dt) group, bit-identical to
// `reactsim -seeds` for the same spec and seeds. Explorations probe their
// lattice through the same cache, so a bisection submitted after a
// covering grid — or after any sweep or run over the same cells —
// performs zero new simulations, and their results are bit-identical to
// `reactsim -explore` for the same space. SIGINT/SIGTERM drain in-flight
// work before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"react/internal/service"
	"react/internal/store"
)

// newHTTPServer wraps the handler in a server with every idle-connection
// timeout set: without ReadHeaderTimeout a single client dribbling header
// bytes pins a connection (and its goroutine) forever — the classic
// slowloris. readHeader is a parameter so the test can use a short one.
func newHTTPServer(addr string, h http.Handler, readHeader time.Duration) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: readHeader,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "concurrent simulation cells (0 = GOMAXPROCS)")
		cache       = flag.Int("cache", service.DefaultCacheRuns, "completed run/sweep views kept for polling and whole-run dedup")
		cacheCells  = flag.Int("cache-cells", service.DefaultCacheCells, "completed cells kept in the content-addressed result cache")
		dataDir     = flag.String("data-dir", "", "persistent cell store directory (empty = memory only)")
		self        = flag.String("self", "", "this node's advertised base URL (required with -peers)")
		peers       = flag.String("peers", "", "comma-separated peer base URLs; turns on cluster mode")
		peerTimeout = flag.Duration("peer-timeout", service.DefaultPeerTimeout, "per-request timeout for peer fetches")
		logReqs     = flag.Bool("log", false, "emit structured request logs (JSON lines on stderr)")
		withPprof   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the same listener")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:     *workers,
		CacheRuns:   *cache,
		CacheCells:  *cacheCells,
		Self:        *self,
		PeerTimeout: *peerTimeout,
	}
	if *logReqs {
		cfg.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			cfg.Peers = append(cfg.Peers, p)
		}
	}
	var st *store.Store
	if *dataDir != "" {
		var err error
		if st, err = store.Open(*dataDir); err != nil {
			fmt.Fprintln(os.Stderr, "reactd:", err)
			os.Exit(1)
		}
		cfg.Store = st
	}
	srv, err := service.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reactd:", err)
		os.Exit(1)
	}
	var handler http.Handler = srv
	if *withPprof {
		// Explicit wiring instead of the package's DefaultServeMux side
		// effect: the service keeps its own mux, and profiling stays
		// strictly opt-in.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
	}
	httpSrv := newHTTPServer(*addr, handler, 10*time.Second)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "reactd: serving on %s (workers %d, cache %d views / %d cells)\n", *addr, *workers, *cache, *cacheCells)
	if st != nil {
		fmt.Fprintf(os.Stderr, "reactd: cell store %s (%d cells)\n", st.Dir(), st.Len())
	}
	if len(cfg.Peers) > 0 {
		fmt.Fprintf(os.Stderr, "reactd: cluster mode, self %s, peers %s\n", *self, *peers)
	}

	select {
	case err := <-errCh:
		// The listener failed outright (bad address, port in use).
		fmt.Fprintln(os.Stderr, "reactd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "reactd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "reactd: shutdown:", err)
	}
	srv.Close()
	if st != nil {
		st.Close()
	}
}
