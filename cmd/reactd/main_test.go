package main

import (
	"errors"
	"net"
	"net/http"
	"os"
	"testing"
	"time"
)

// TestStalledHeaderWriteDisconnected pins the slowloris fix: a client that
// opens a connection and dribbles half a request header must be
// disconnected once ReadHeaderTimeout elapses, not parked forever.
func TestStalledHeaderWriteDisconnected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := newHTTPServer("", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), 150*time.Millisecond)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request: the header section never terminates.
	if _, err := conn.Write([]byte("GET /metrics HTTP/1.1\r\nHost: stalled\r\n")); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	conn.SetReadDeadline(start.Add(5 * time.Second))
	_, err = conn.Read(make([]byte, 1))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("server answered an unfinished request")
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("connection still open after %v: server never disconnected the stalled client", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Errorf("disconnect took %v, want roughly the 150ms ReadHeaderTimeout", elapsed)
	}

	// A well-formed request right after still works: the timeout hit one
	// connection, not the listener.
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}
