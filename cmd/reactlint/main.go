// Command reactlint is the repo's domain-specific multichecker: it runs
// the internal/lint analyzer suite — determinism, dtarith, fpcomplete,
// lockhygiene, plus the general nilness and shadow passes — over Go
// package patterns and exits nonzero on any diagnostic.
//
//	go run ./cmd/reactlint ./...          # whole repo (CI runs exactly this)
//	go run ./cmd/reactlint -rules dtarith ./internal/sim/...
//	go run ./cmd/reactlint -list
//
// Suppress a finding only with a reasoned directive on the flagged line or
// the line above: //lint:reactlint-ignore <rule> <reason>. DESIGN.md
// ("Invariants and enforcement") documents the policy.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"react/internal/lint"
	"react/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run keeps main testable: 0 = clean, 1 = findings, 2 = usage or load
// failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reactlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "print the analyzers and exit")
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s: %s\n\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := load.New()
	pkgs, err := loader.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		fds, err := lint.RunPackage(loader.Fset, pkg, analyzers)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		for _, f := range fds {
			findings++
			fmt.Fprintf(stdout, "%s:%d:%d: %s (%s)\n", relPath(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Message, f.Rule)
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "reactlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// relPath shortens absolute positions to cwd-relative ones for readable,
// clickable output; paths outside the tree stay absolute.
func relPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	rel, err := filepath.Rel(wd, p)
	if err != nil || len(rel) >= len(p) {
		return p
	}
	return rel
}
