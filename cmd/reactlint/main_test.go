package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoClean is the acceptance gate CI re-runs as a binary: the whole
// repository must produce zero diagnostics.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo analysis in -short mode")
	}
	root := repoRoot(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", root, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("reactlint over the repo: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

// TestSeededViolation builds a throwaway module containing a determinism
// violation and asserts the driver exits 1 and names it — the behavior
// that makes the CI step fail on a bad commit.
func TestSeededViolation(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module seeded\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "sim", "sim.go"), `package sim

import "time"

func Stamp() int64 {
	return time.Now().Unix()
}
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "(determinism)") || !strings.Contains(stdout.String(), "wall clock") {
		t.Fatalf("diagnostic does not name the determinism finding:\n%s", stdout.String())
	}
}

func TestListRules(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list: exit %d, stderr %s", code, stderr.String())
	}
	for _, rule := range []string{"determinism", "dtarith", "fpcomplete", "lockhygiene", "nilness", "shadow"} {
		if !strings.Contains(stdout.String(), rule+":") {
			t.Errorf("-list output is missing %s", rule)
		}
	}
}

func TestUnknownRule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-rules", "nosuchrule", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown rule: exit %d, want 2", code)
	}
}

// repoRoot walks up from the test's working directory to the go.mod of
// module react.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil && strings.HasPrefix(string(data), "module react\n") {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module react root not found above test directory")
		}
		dir = parent
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
