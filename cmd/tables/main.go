// Command tables regenerates the paper's evaluation tables (1–5), the §5.1
// overhead characterization, and the headline improvement numbers.
//
// Usage:
//
//	tables [-table 1|2|3|4|5|overhead|all] [-seed n] [-csv]
//
// Tables 2, 4 and 5 require the full evaluation grid (4 benchmarks ×
// 5 traces × 5 buffers ≈ one minute of simulation, parallelized).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"react/internal/experiments"
	"react/internal/runner"
)

func main() {
	var (
		which   = flag.String("table", "all", "which table: 1, 2, 3, 4, 5, overhead, fig7, all")
		seed    = flag.Uint64("seed", 1, "trace/event seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		workers = flag.Int("workers", 0, "worker pool size for the grid (0 = GOMAXPROCS)")
	)
	flag.Parse()

	opt := experiments.Options{Seed: *seed}
	var tables []*experiments.Table

	needGrid := map[string]bool{"2": true, "4": true, "5": true, "fig7": true, "all": true}[*which]
	var grid *experiments.Grid
	if needGrid {
		var err error
		fmt.Fprintln(os.Stderr, "tables: running the evaluation grid (4 benchmarks × 5 traces × 5 buffers)...")
		r := &runner.Runner{
			Workers: *workers,
			OnProgress: func(p runner.Progress) {
				fmt.Fprintf(os.Stderr, "\rtables: %d/%d cells", p.Done, p.Total)
				if p.Done == p.Total {
					fmt.Fprintln(os.Stderr)
				}
			},
		}
		grid, err = experiments.RunGridOn(context.Background(), r, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
	}

	add := func(t *experiments.Table) { tables = append(tables, t) }
	switch *which {
	case "1":
		add(experiments.Table1())
	case "3":
		add(experiments.Table3(*seed))
	case "2":
		add(experiments.Table2(grid))
	case "4":
		add(experiments.Table4(grid))
	case "5":
		add(experiments.Table5(grid))
	case "fig7":
		add(experiments.ComputeFigure7(grid).Table())
	case "overhead":
		o, err := experiments.RunOverhead(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		add(o.Table())
	case "all":
		add(experiments.Table1())
		add(experiments.Table3(*seed))
		add(experiments.Table4(grid))
		add(experiments.Table2(grid))
		add(experiments.Table5(grid))
		add(experiments.ComputeFigure7(grid).Table())
		o, err := experiments.RunOverhead(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		add(o.Table())
	default:
		fmt.Fprintf(os.Stderr, "tables: unknown table %q\n", *which)
		os.Exit(2)
	}

	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.String())
		}
	}
}
