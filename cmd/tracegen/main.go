// Command tracegen generates, inspects and exports the synthetic power
// traces used by the evaluation.
//
//	tracegen -list                 show statistics for every built-in trace
//	tracegen -trace cart -o x.csv  export one trace as CSV
//	tracegen -inspect f.csv        show statistics for an external trace
package main

import (
	"flag"
	"fmt"
	"os"

	"react/internal/trace"
)

var builtins = []struct {
	key string
	gen func(uint64) *trace.Trace
}{
	{"cart", trace.RFCart},
	{"obstructed", trace.RFObstructed},
	{"mobile", trace.RFMobile},
	{"campus", trace.SolarCampus},
	{"commute", trace.SolarCommute},
	{"pedestrian", trace.Fig1Pedestrian},
	{"night", trace.Night},
}

func main() {
	var (
		list    = flag.Bool("list", false, "show statistics for every built-in trace")
		name    = flag.String("trace", "", "built-in trace to export")
		outFile = flag.String("o", "", "output CSV file for -trace")
		inspect = flag.String("inspect", "", "CSV trace file to summarize")
		seed    = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-16s %9s %12s %8s %10s %10s\n", "trace", "time (s)", "mean (mW)", "CV", "peak (mW)", "energy (J)")
		for _, b := range builtins {
			printStats(b.gen(*seed))
		}
	case *name != "":
		tr := find(*name, *seed)
		if tr == nil {
			fmt.Fprintf(os.Stderr, "tracegen: unknown trace %q\n", *name)
			os.Exit(2)
		}
		w := os.Stdout
		if *outFile != "" {
			f, err := os.Create(*outFile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := tr.WriteCSV(w); err != nil {
			fatal(err)
		}
		if *outFile != "" {
			fmt.Fprintf(os.Stderr, "wrote %s (%d samples)\n", *outFile, len(tr.Power))
		}
	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.ReadCSV(*inspect, f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-16s %9s %12s %8s %10s %10s\n", "trace", "time (s)", "mean (mW)", "CV", "peak (mW)", "energy (J)")
		printStats(tr)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func find(key string, seed uint64) *trace.Trace {
	for _, b := range builtins {
		if b.key == key {
			return b.gen(seed)
		}
	}
	return nil
}

func printStats(tr *trace.Trace) {
	s := tr.Stats()
	fmt.Printf("%-16s %9.0f %12.3f %7.0f%% %10.2f %10.3f\n",
		tr.Name, s.Duration, s.Mean*1e3, s.CV*100, s.Peak*1e3, s.Energy)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
