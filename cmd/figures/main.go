// Command figures regenerates the paper's figures as CSV series plus the
// §2.1 background analysis.
//
//	figures -fig 1          voltage/on-time series for the 1 mF and 300 mF
//	                        static buffers on the pedestrian solar trace
//	figures -fig 6          voltage series for SC under RF Mobile across
//	                        770 µF, 10 mF, Morphy and REACT
//	figures -fig 7          normalized-performance summary (runs the grid)
//	figures -fig background §2.1 static-buffer analysis table
//
// Series go to one CSV file per run under -out (default "figures").
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"react/internal/experiments"
	"react/internal/runner"
)

func main() {
	var (
		fig     = flag.String("fig", "1", "which figure: 1, 6, 7, background")
		seed    = flag.Uint64("seed", 1, "trace/event seed")
		out     = flag.String("out", "figures", "output directory for CSV series")
		workers = flag.Int("workers", 0, "worker pool size for the grid (0 = GOMAXPROCS)")
	)
	flag.Parse()

	opt := experiments.Options{Seed: *seed}
	switch *fig {
	case "1":
		runs, err := experiments.Figure1(opt)
		if err != nil {
			fatal(err)
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for _, r := range runs {
			name := filepath.Join(*out, "fig1_"+sanitize(r.Label)+".csv")
			if err := writeSeries(name, r.Label, r); err != nil {
				fatal(err)
			}
			fmt.Printf("fig1 %-8s latency %7.1f s  on %6.0f s  cycles %4d  -> %s\n",
				r.Label, r.Result.Latency, r.Result.OnTime, r.Result.Cycles, name)
		}
	case "6":
		series, err := experiments.Figure6(opt)
		if err != nil {
			fatal(err)
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		names := make([]string, 0, len(series))
		for n := range series {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			file := filepath.Join(*out, "fig6_"+sanitize(n)+".csv")
			f, err := os.Create(file)
			if err != nil {
				fatal(err)
			}
			if err := experiments.WriteSeriesCSV(f, n, series[n]); err != nil {
				f.Close()
				fatal(err)
			}
			f.Close()
			fmt.Printf("fig6 %-8s %5d samples -> %s\n", n, len(series[n]), file)
		}
	case "7":
		fmt.Fprintln(os.Stderr, "figures: running the evaluation grid...")
		r := &runner.Runner{
			Workers: *workers,
			OnProgress: func(p runner.Progress) {
				fmt.Fprintf(os.Stderr, "\rfigures: %d/%d cells", p.Done, p.Total)
				if p.Done == p.Total {
					fmt.Fprintln(os.Stderr)
				}
			},
		}
		grid, err := experiments.RunGridOn(context.Background(), r, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.ComputeFigure7(grid).Table().String())
	case "background":
		bg, err := experiments.RunBackground(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bg.Table().String())
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func writeSeries(name, label string, r experiments.Figure1Run) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	return experiments.WriteSeriesCSV(f, label, r.Samples)
}

func sanitize(s string) string {
	s = strings.ReplaceAll(s, " ", "_")
	s = strings.ReplaceAll(s, "µ", "u")
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
