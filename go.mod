module react

go 1.24
