package react_test

import (
	"context"

	"fmt"

	"react"
)

// The canonical use: replay a power trace into a REACT buffer powering a
// device, and read the outcome.
func ExampleRun() {
	buf := react.NewREACT(react.DefaultConfig())
	dev := react.NewDevice(react.DefaultProfile(), react.NewDataEncryption(0.6e-3))
	res, err := react.Run(react.SimConfig{
		Frontend: react.NewFrontend(react.RFCart(1), nil),
		Buffer:   buf,
		Device:   dev,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("started after %.1f s, buffer expanded to level %d of %d\n",
		res.Latency, buf.Level(), buf.MaxLevel())
	// Output: started after 3.9 s, buffer expanded to level 0 of 10
}

// Equation 2 bounds how large a bank's capacitors may be before the
// parallel→series reclamation spike crosses the overvoltage threshold.
func ExampleMaxUnitCapacitance() {
	limit := react.MaxUnitCapacitance(2, 770e-6, 1.9, 3.5)
	spike := react.VoltageAfterReclaim(2, 5e-3, 770e-6, 1.9)
	fmt.Printf("2-capacitor banks may use up to %.2f mF; a 5 mF unit spikes to %.2f V\n",
		limit*1e3, spike)
	// Output: 2-capacitor banks may use up to 8.21 mF; a 5 mF unit spikes to 3.35 V
}

// Software-directed longevity: find the capacitance level that guarantees
// enough energy for an atomic radio transmission, then wait for it.
func ExampleLevelFor() {
	buf := react.NewREACT(react.DefaultConfig())
	lvl, ok := react.LevelFor(buf, 5e-3) // a 5 mJ transmission
	fmt.Printf("wait for level %d (guarantees %.1f mJ, ok=%v)\n",
		lvl, buf.GuaranteedEnergy(lvl)*1e3, ok)
	// Output: wait for level 3 (guarantees 6.4 mJ, ok=true)
}

// Synthetic traces are deterministic per seed and match the paper's
// Table 3 statistics.
func ExampleEvaluationTraces() {
	for _, tr := range react.EvaluationTraces(1) {
		s := tr.Stats()
		fmt.Printf("%-14s %5.0f s  %6.3f mW\n", tr.Name, s.Duration, s.Mean*1e3)
	}
	// Output:
	// RF Cart          313 s   2.120 mW
	// RF Obstructed    313 s   0.227 mW
	// RF Mobile        318 s   0.500 mW
	// Solar Campus    3609 s   5.180 mW
	// Solar Commute   6030 s   0.148 mW
}

// Parameter sweeps schedule through the experiment engine's worker pool
// and return results in point order — here, cold-start latency as a
// function of the last-level buffer size.
func ExampleSweep() {
	sizes := []float64{330e-6, 770e-6, 2e-3}
	latencies, err := react.Sweep(context.Background(), nil, sizes,
		func(_ context.Context, llbC float64) (float64, error) {
			cfg := react.DefaultConfig()
			cfg.LLB.C = llbC
			res, err := react.Run(react.SimConfig{
				Frontend: react.NewFrontend(react.RFCart(1), nil),
				Buffer:   react.NewREACT(cfg),
				Device:   react.NewDevice(react.DefaultProfile(), react.NewDataEncryption(0.6e-3)),
			})
			if err != nil {
				return 0, err
			}
			return res.Latency, nil
		})
	if err != nil {
		panic(err)
	}
	for i, c := range sizes {
		fmt.Printf("LLB %4.0f µF -> first enable after %.1f s\n", c*1e6, latencies[i])
	}
	// Output:
	// LLB  330 µF -> first enable after 2.7 s
	// LLB  770 µF -> first enable after 3.9 s
	// LLB 2000 µF -> first enable after 5.0 s
}
